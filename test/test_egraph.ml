(* Equality saturation (the TENSAT-style engine fed by mined rules). *)
open Dsl
open Stenso

let p = Parser.expression
let ast = Alcotest.testable Ast.pp Ast.equal

let env =
  [ ("A", Types.float_t [| 3; 4 |]); ("B", Types.float_t [| 4; 3 |]);
    ("C", Types.float_t [| 3; 4 |]) ]

let diag_rule =
  Rules.generalize
    (p "np.diag(np.dot(A, B))")
    (p "np.sum(np.multiply(A, B.T), axis=1)")

let comm_add = Rules.generalize (p "A + B") (p "B + A")
let pow2 = Rules.generalize (p "np.power(A, 2)") (p "np.multiply(A, A)")

let test_hashconsing () =
  let g = Egraph.create env in
  let c1 = Egraph.add g (p "np.dot(A, B) + np.dot(A, B)") in
  let c2 = Egraph.add g (p "np.dot(A, B)") in
  let st = Egraph.stats g in
  (* the duplicated dot is shared: add, dot, A, B -> 4 nodes *)
  Alcotest.(check int) "structure shared" 4 st.nodes;
  Alcotest.(check bool) "distinct classes" true (not (Egraph.equivalent g c1 c2))

let test_saturation_rewrites () =
  let g = Egraph.create env in
  let orig = p "np.diag(np.dot(A, B))" in
  let cls = Egraph.add g orig in
  let st = Egraph.saturate ~rules:[ diag_rule ] g in
  Alcotest.(check bool) "applied once" true (st.applications >= 1);
  Alcotest.(check bool) "reached fixpoint" true st.saturated;
  let best = Egraph.extract g ~model:Cost.Model.flops cls in
  Alcotest.check ast "extraction picks the cheap form"
    (p "np.sum(np.multiply(A, np.transpose(B)), axis=1)")
    best;
  Alcotest.(check bool) "extraction preserves semantics" true
    (Sexec.equivalent env orig best)

let test_congruence () =
  let g = Egraph.create env in
  let c1 = Egraph.add g (p "np.sqrt(A + C)") in
  let c2 = Egraph.add g (p "np.sqrt(C + A)") in
  Alcotest.(check bool) "initially distinct" true
    (not (Egraph.equivalent g c1 c2));
  ignore (Egraph.saturate ~rules:[ comm_add ] g);
  (* commutativity of the argument must propagate through sqrt *)
  Alcotest.(check bool) "congruence closure" true (Egraph.equivalent g c1 c2)

let test_rule_set_limitation () =
  (* the paper's point: without the relevant rule, saturation cannot
     improve the program *)
  let g = Egraph.create env in
  let orig = p "np.diag(np.dot(A, B))" in
  let cls = Egraph.add g orig in
  ignore (Egraph.saturate ~rules:[ pow2; comm_add ] g);
  let best = Egraph.extract g ~model:Cost.Model.flops cls in
  Alcotest.(check bool) "no rule, no gain" true
    (Cost.Model.program_cost Cost.Model.flops env best
     >= Cost.Model.program_cost Cost.Model.flops env orig)

let test_node_limit () =
  (* commutativity alone blows up; the node limit must stop it *)
  let g = Egraph.create env in
  let _ = Egraph.add g (p "A + C + A + C + A + C + A + C") in
  let st = Egraph.saturate ~node_limit:200 ~rules:[ comm_add ] g in
  Alcotest.(check bool) "bounded" true (st.nodes <= 400)

let test_mined_rules_cross_apply () =
  (* a rule mined from one program optimizes a structurally different
     one inside the e-graph (the paper's feedback-loop claim) *)
  let envk =
    [ ("K", Types.float_t [| 2; 3 |]); ("W", Types.float_t [| 3; 2 |]);
      ("s", Types.scalar_f) ]
  in
  let g = Egraph.create envk in
  let orig = p "np.multiply(s, np.diag(np.dot(K, W)))" in
  let cls = Egraph.add g orig in
  ignore (Egraph.saturate ~rules:[ diag_rule ] g);
  let best = Egraph.extract g ~model:Cost.Model.flops cls in
  Alcotest.(check bool) "nested position rewritten" true
    (Cost.Model.program_cost Cost.Model.flops envk best
     < Cost.Model.program_cost Cost.Model.flops envk orig);
  Alcotest.(check bool) "still equivalent" true
    (Sexec.equivalent envk orig best)

let test_nan_hashconsing () =
  (* Constants are hashconsed by their IEEE bit pattern: under
     structural equality nan <> nan, so a NaN constant used to mint a
     fresh e-node (and a fresh class) on every insertion. *)
  let g = Egraph.create env in
  let nan_prog = Ast.App (Ast.Mul, [ Ast.Input "A"; Ast.Const Float.nan ]) in
  let c1 = Egraph.add g nan_prog in
  let c2 = Egraph.add g nan_prog in
  Alcotest.(check bool) "same class" true (Egraph.equivalent g c1 c2);
  (* mul, A, nan: exactly three nodes despite the double insertion *)
  Alcotest.(check int) "structure shared" 3 (Egraph.stats g).nodes;
  (* a rule whose pattern carries a NaN constant must still match *)
  let rule =
    {
      Rules.lhs = Ast.App (Ast.Mul, [ Ast.Input "X"; Ast.Const Float.nan ]);
      rhs = Ast.App (Ast.Mul, [ Ast.Const Float.nan; Ast.Input "X" ]);
      metavars = [ ("A", "X") ];
    }
  in
  let st = Egraph.saturate ~rules:[ rule ] g in
  Alcotest.(check bool) "NaN pattern applies" true (st.applications >= 1);
  (* extraction round-trips the bit pattern back to a NaN constant *)
  let best = Egraph.extract g ~model:Cost.Model.flops c1 in
  let rec has_nan = function
    | Ast.Const f -> Float.is_nan f
    | Ast.Input _ -> false
    | Ast.App (_, args) -> List.exists has_nan args
    | Ast.For_stack { body; _ } -> has_nan body
  in
  Alcotest.(check bool) "NaN survives extraction" true (has_nan best)

let test_unsupported_loops () =
  let envl = [ ("A", Types.float_t [| 3; 2 |]) ] in
  let g = Egraph.create envl in
  match Egraph.add g (p "np.stack([r * 2 for r in A])") with
  | exception Egraph.Unsupported _ -> ()
  | _ -> Alcotest.fail "comprehensions must be rejected"

let suite =
  [
    Alcotest.test_case "hash consing" `Quick test_hashconsing;
    Alcotest.test_case "saturation + extraction" `Quick
      test_saturation_rewrites;
    Alcotest.test_case "congruence closure" `Quick test_congruence;
    Alcotest.test_case "rule-set limitation" `Quick test_rule_set_limitation;
    Alcotest.test_case "node limit" `Quick test_node_limit;
    Alcotest.test_case "mined rules cross-apply" `Quick
      test_mined_rules_cross_apply;
    Alcotest.test_case "NaN hashconsing" `Quick test_nan_hashconsing;
    Alcotest.test_case "loops unsupported" `Quick test_unsupported_loops;
  ]
