(* Symbolic expression normalization — the engine behind specification
   equality.  Unit tests pin the identities the paper's benchmarks rely
   on; the property tests validate normalization against numeric
   evaluation on random positive inputs. *)
open Symbolic

let e = Alcotest.testable Expr.pp Expr.equal
let a = Expr.sym "a"
let b = Expr.sym "b"
let c = Expr.sym "c"
let i = Expr.int

let test_add_collect () =
  Alcotest.check e "a+a = 2a" Expr.(mul [ i 2; a ]) Expr.(add [ a; a ]);
  Alcotest.check e "a+b-a = b" b Expr.(add [ a; b; neg a ]);
  Alcotest.check e "5-fold sum = 5a"
    Expr.(mul [ i 5; a ])
    Expr.(add [ a; a; a; a; a ]);
  Alcotest.check e "ab+3ab = 4ab"
    Expr.(mul [ i 4; a; b ])
    Expr.(add [ mul [ a; b ]; mul [ i 3; a; b ] ]);
  Alcotest.check e "sum to zero" Expr.zero Expr.(add [ a; neg a ]);
  Alcotest.check e "constants fold" (i 5) Expr.(add [ i 2; i 3 ])

let test_mul_collect () =
  Alcotest.check e "a*a = a^2" Expr.(pow a (i 2)) Expr.(mul [ a; a ]);
  Alcotest.check e "a^5" Expr.(pow a (i 5)) Expr.(mul [ a; a; a; a; a ]);
  Alcotest.check e "a*b*a = a^2 b"
    Expr.(mul [ pow a (i 2); b ])
    Expr.(mul [ a; b; a ]);
  Alcotest.check e "zero annihilates" Expr.zero Expr.(mul [ a; zero; b ]);
  Alcotest.check e "one neutral" a Expr.(mul [ one; a ]);
  Alcotest.check e "a^6/a^4 = a^2"
    Expr.(pow a (i 2))
    Expr.(div (pow a (i 6)) (pow a (i 4)));
  Alcotest.check e "a/a = 1" Expr.one Expr.(div a a)

let test_distribution () =
  Alcotest.check e "(a+b)c = ac+bc"
    Expr.(add [ mul [ a; c ]; mul [ b; c ] ])
    Expr.(mul [ add [ a; b ]; c ]);
  Alcotest.check e "(a+b)^2 expands"
    Expr.(add [ pow a (i 2); mul [ i 2; a; b ]; pow b (i 2) ])
    Expr.(pow (add [ a; b ]) (i 2));
  Alcotest.check e "(a-b)(a+b) = a^2-b^2"
    Expr.(sub (pow a (i 2)) (pow b (i 2)))
    Expr.(mul [ sub a b; add [ a; b ] ])

let test_powers () =
  Alcotest.check e "sqrt(a)^4 = a^2"
    Expr.(pow a (i 2))
    Expr.(pow (sqrt a) (i 4));
  Alcotest.check e "(2 sqrt a)^2 = 4a"
    Expr.(mul [ i 4; a ])
    Expr.(pow (add [ sqrt a; sqrt a ]) (i 2));
  Alcotest.check e "(a+b)/sqrt(a+b) = sqrt(a+b)"
    Expr.(sqrt (add [ a; b ]))
    Expr.(div (add [ a; b ]) (sqrt (add [ a; b ])));
  Alcotest.check e "(xy)^2 distributes"
    Expr.(mul [ pow a (i 2); pow b (i 2) ])
    Expr.(pow (mul [ a; b ]) (i 2));
  Alcotest.check e "4^(1/2) = 2" (i 2) Expr.(sqrt (i 4));
  Alcotest.check e "(8/27)^(1/3) = 2/3"
    (Expr.rat (Q.make 2 3))
    Expr.(pow (rat (Q.make 8 27)) (rat (Q.make 1 3)));
  Alcotest.check e "x^0 = 1" Expr.one Expr.(pow a Expr.zero);
  Alcotest.check e "1^x = 1" Expr.one Expr.(pow one b);
  (* Huge exponent denominators (float constants such as 1e-5 squared)
     must fail the exact-root probe immediately — the verification loop
     once ran for [den] iterations, freezing stub enumeration. *)
  let t0 = Unix.gettimeofday () in
  (match Expr.(pow (rat (Q.make 1 100000)) (rat (Q.make 1 10_000_000_000))) with
  | Expr.Pow (Expr.Rat b, Expr.Rat ex) ->
      Alcotest.(check bool)
        "(1/100000)^(1/10^10) stays opaque" true
        (Q.equal b (Q.make 1 100000)
        && Q.equal ex (Q.make 1 10_000_000_000))
  | _ -> Alcotest.fail "(1/100000)^(1/10^10): expected an opaque power");
  Alcotest.check e "1^(1/10^10) = 1" Expr.one
    Expr.(pow one (rat (Q.make 1 10_000_000_000)));
  Alcotest.(check bool)
    "giant-root probe is immediate" true
    (Unix.gettimeofday () -. t0 < 1.0)

let test_exp_log () =
  Alcotest.check e "exp(log x) = x" a Expr.(exp (log a));
  Alcotest.check e "log(exp x) = x" a Expr.(log (exp a));
  Alcotest.check e "exp(log(a+b)) = a+b"
    Expr.(add [ a; b ])
    Expr.(exp (log (add [ a; b ])));
  Alcotest.check e "exp(log a - log b) = a/b"
    Expr.(div a b)
    Expr.(exp (sub (log a) (log b)));
  Alcotest.check e "log(ab) = log a + log b"
    Expr.(add [ log a; log b ])
    Expr.(log (mul [ a; b ]));
  Alcotest.check e "log(a^3) = 3 log a"
    Expr.(mul [ i 3; log a ])
    Expr.(log (pow a (i 3)));
  Alcotest.check e "exp 0 = 1" Expr.one Expr.(exp zero);
  Alcotest.check e "log 1 = 0" Expr.zero Expr.(log one)

let test_max_less_where () =
  Alcotest.check e "max(a,a) = a" a Expr.(max2 a a);
  Alcotest.check e "max commutes" Expr.(max2 a b) Expr.(max2 b a);
  Alcotest.check e "max constants" (i 3) Expr.(max2 (i 1) (i 3));
  Alcotest.check e "less const" Expr.one Expr.(less (i 1) (i 2));
  Alcotest.check e "less reflexive is false" Expr.zero Expr.(less a a);
  Alcotest.check e "where true" a Expr.(where one a b);
  Alcotest.check e "where false" b Expr.(where zero a b);
  Alcotest.check e "where same" a Expr.(where (less a b) a a)

(* The identities behind the ML-kernel workloads: numerically-stable
   spellings must normalize to the same form as their naive (cheaper)
   counterparts. *)
let test_ml_identities () =
  let m = Expr.max2 a b in
  Alcotest.check e "stable softmax = naive"
    Expr.(div (exp a) (add [ exp a; exp b ]))
    Expr.(div (exp (sub a m)) (add [ exp (sub a m); exp (sub b m) ]));
  Alcotest.check e "stable logsumexp = naive"
    Expr.(log (add [ exp a; exp b ]))
    Expr.(add [ m; log (add [ exp (sub a m); exp (sub b m) ]) ]);
  Alcotest.check e "max shift"
    Expr.(add [ c; max2 a b ])
    Expr.(max2 (add [ a; c ]) (add [ b; c ]));
  Alcotest.check e "max shift (constant)"
    Expr.(add [ int (-1); max2 a b ])
    Expr.(max2 (sub a one) (sub b one));
  (* logistic gate: e^2t / (1 + e^2t) = 1 / (1 + e^-2t) *)
  Alcotest.check e "two-exp logistic = one-exp logistic"
    Expr.(div one (add [ one; exp (mul [ int (-2); a ]) ]))
    Expr.(div (exp (mul [ i 2; a ])) (add [ one; exp (mul [ i 2; a ]) ]));
  (* common positive factor clears from a sum under pow *)
  Alcotest.check e "common denominator clears"
    Expr.(div (pow (exp a) (i 2)) (add [ one; pow (exp a) (i 2) ]))
    Expr.(div one (add [ one; pow (exp a) (i (-2)) ]))

let test_queries () =
  Alcotest.(check (option reject)) "div_exact failure" None
    Expr.(div_exact a (mul [ b; b ]));
  (match Expr.(div_exact (add [ mul [ a; b ]; mul [ c; b ] ]) b) with
  | Some r -> Alcotest.check e "(ab+cb)/b" Expr.(add [ a; c ]) r
  | None -> Alcotest.fail "division should be exact");
  (match Expr.(div_exact (div a b) b) with
  | Some _ -> Alcotest.fail "a/b^2 is not exact"
  | None -> ());
  Alcotest.(check (option reject)) "div by zero" None Expr.(div_exact a zero);
  let x = Sym.scalar "x" in
  (match Expr.(linear_coeff (add [ mul [ i 2; a; var x ]; b ]) x) with
  | Some (coeff, rest) ->
      Alcotest.check e "linear coeff" Expr.(mul [ i 2; a ]) coeff;
      Alcotest.check e "linear rest" b rest
  | None -> Alcotest.fail "linear extraction should succeed");
  (match Expr.(linear_coeff (mul [ var x; var x ]) x) with
  | Some _ -> Alcotest.fail "x^2 is not linear"
  | None -> ());
  (match Expr.(root_exact (pow a (i 2)) (Q.of_int 2)) with
  | Some r -> Alcotest.check e "sqrt of a^2" a r
  | None -> Alcotest.fail "root should be exact")

let test_vars_size () =
  let expr = Expr.(add [ mul [ a; b ]; pow c (i 2) ]) in
  Alcotest.(check int) "vars count" 3 (Sym.Set.cardinal (Expr.vars expr));
  Alcotest.(check (list string))
    "base names" [ "a"; "b"; "c" ] (Expr.base_names expr);
  Alcotest.(check bool) "size positive" true (Expr.size expr > 3)

let test_subst () =
  let x = Sym.scalar "x" in
  let expr = Expr.(add [ var x; mul [ var x; b ] ]) in
  let result = Expr.subst (fun s -> if Sym.equal s x then Some a else None) expr in
  Alcotest.check e "subst renormalizes" Expr.(add [ a; mul [ a; b ] ]) result

(* -------- properties: normalization preserves numeric value -------- *)

(* Random expression trees over three positive symbols. *)
let arb_expr =
  let open QCheck2.Gen in
  (* Constant power towers can exceed native-int rationals while the
     tree is being *built*; fall back to the left operand then. *)
  let safe f fallback = try f () with Symbolic.Q.Overflow -> fallback in
  let leaf =
    oneof
      [
        return a;
        return b;
        return c;
        map (fun n -> Expr.int n) (int_range 1 4);
      ]
  in
  let rec tree n =
    if n = 0 then leaf
    else
      let sub = tree (n - 1) in
      oneof
        [
          leaf;
          (* positivity-preserving constructors only: the engine's
             power/sqrt/log rules assume positive values, exactly like
             the paper's use of SymPy with positive symbols *)
          map2 (fun x y -> safe (fun () -> Expr.add [ x; y ]) x) sub sub;
          map2 (fun x y -> safe (fun () -> Expr.mul [ x; y ]) x) sub sub;
          map2 (fun x y -> safe (fun () -> Expr.div x y) x) sub sub;
          map (fun x -> safe (fun () -> Expr.sqrt x) x) sub;
          map2
            (fun x k -> safe (fun () -> Expr.pow x (Expr.int k)) x)
            sub (int_range 1 3);
        ]
  in
  tree 4

let env_of (va, vb, vc) s =
  match Sym.base s with
  | "a" -> va
  | "b" -> vb
  | "c" -> vc
  | _ -> 1.

let close x y =
  x = y
  || (Float.is_nan x && Float.is_nan y)
  || Float.abs (x -. y) <= 1e-6 *. (1. +. Float.abs x +. Float.abs y)

let arb_env = QCheck2.Gen.(triple (float_range 0.1 2.) (float_range 0.1 2.) (float_range 0.1 2.))

(* Coefficient towers like ((4^3)^3)^3 legitimately exceed native ints;
   the engine signals Q.Overflow, which is a vacuous case for value
   preservation. *)
let overflow_ok f = try f () with Symbolic.Q.Overflow -> true

let prop_add_sound =
  QCheck2.Test.make ~name:"expr: add/sub normalization preserves value"
    ~count:300
    QCheck2.Gen.(triple arb_expr arb_expr arb_env)
    (fun (x, y, vals) ->
      overflow_ok (fun () ->
          let env = env_of vals in
          close
            (Expr.eval env (Expr.add [ x; y ]))
            (Expr.eval env x +. Expr.eval env y)
          && close
               (Expr.eval env (Expr.sub x y))
               (Expr.eval env x -. Expr.eval env y)))

let prop_mul_sound =
  QCheck2.Test.make ~name:"expr: mul normalization preserves value" ~count:300
    QCheck2.Gen.(triple arb_expr arb_expr arb_env)
    (fun (x, y, vals) ->
      overflow_ok (fun () ->
          let env = env_of vals in
          close
            (Expr.eval env (Expr.mul [ x; y ]))
            (Expr.eval env x *. Expr.eval env y)))

let prop_pow_sound =
  QCheck2.Test.make ~name:"expr: pow normalization preserves value" ~count:300
    QCheck2.Gen.(triple arb_expr (QCheck2.Gen.int_range 1 3) arb_env)
    (fun (x, k, vals) ->
      overflow_ok (fun () ->
          let env = env_of vals in
          close
            (Expr.eval env (Expr.pow x (Expr.int k)))
            (Float.pow (Expr.eval env x) (float_of_int k))))

let prop_div_exact_sound =
  QCheck2.Test.make ~name:"expr: div_exact q*b = a" ~count:300
    QCheck2.Gen.(triple arb_expr arb_expr arb_env)
    (fun (x, y, vals) ->
      match Expr.div_exact x y with
      | None -> true
      | Some q ->
          let env = env_of vals in
          close (Expr.eval env (Expr.mul [ q; y ])) (Expr.eval env x))

let prop_compare_total =
  QCheck2.Test.make ~name:"expr: equal iff compare = 0" ~count:300
    QCheck2.Gen.(pair arb_expr arb_expr)
    (fun (x, y) -> Expr.equal x y = (Expr.compare x y = 0))

let suite =
  [
    Alcotest.test_case "additive collection" `Quick test_add_collect;
    Alcotest.test_case "multiplicative collection" `Quick test_mul_collect;
    Alcotest.test_case "distribution/expansion" `Quick test_distribution;
    Alcotest.test_case "power rules" `Quick test_powers;
    Alcotest.test_case "exp/log rules" `Quick test_exp_log;
    Alcotest.test_case "max/less/where" `Quick test_max_less_where;
    Alcotest.test_case "ML-kernel identities" `Quick test_ml_identities;
    Alcotest.test_case "solver queries" `Quick test_queries;
    Alcotest.test_case "vars and size" `Quick test_vars_size;
    Alcotest.test_case "substitution" `Quick test_subst;
    QCheck_alcotest.to_alcotest prop_add_sound;
    QCheck_alcotest.to_alcotest prop_mul_sound;
    QCheck_alcotest.to_alcotest prop_pow_sound;
    QCheck_alcotest.to_alcotest prop_div_exact_sound;
    QCheck_alcotest.to_alcotest prop_compare_total;
  ]
