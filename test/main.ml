let () =
  Alcotest.run "stenso"
    [
      ("q", Test_q.suite);
      ("expr", Test_expr.suite);
      ("shape", Test_shape.suite);
      ("tensor", Test_tensor.suite);
      ("parser", Test_parser.suite);
      ("types", Test_types.suite);
      ("exec", Test_exec.suite);
      ("cost", Test_cost.suite);
      ("spec", Test_spec.suite);
      ("stub", Test_stub.suite);
      ("invert", Test_invert.suite);
      ("search", Test_search.suite);
      ("superopt", Test_superopt.suite);
      ("config", Test_config.suite);
      ("parallel", Test_parallel.suite);
      ("telemetry", Test_telemetry.suite);
      ("store", Test_store.suite);
      ("frameworks", Test_frameworks.suite);
      ("baseline", Test_baseline.suite);
      ("rules", Test_rules.suite);
      ("suite-defs", Test_suite_defs.suite);
      ("lift", Test_lift.suite);
      ("masking", Test_masking.suite);
      ("soak", Test_soak.suite);
      ("printer", Test_printer.suite);
      ("egraph", Test_egraph.suite);
      ("tiers", Test_tiers.suite);
      ("net", Test_net.suite);
      ("serve-proto", Test_serve_proto.suite);
    ]
