(* End-to-end: Algorithm 1 over the full 33-benchmark suite with the
   FLOPs estimator (deterministic).  Every outcome must be symbolically
   equivalent to its original and agree on random concrete inputs. *)
open Dsl
open Stenso

let model = Cost.Model.flops

let outcomes =
  lazy
    (List.map
       (fun (b : Suite.Benchmarks.t) ->
         (b, Superopt.superoptimize ~model ~env:b.env b.program))
       Suite.Benchmarks.all)

let test_all_verified () =
  List.iter
    (fun ((b : Suite.Benchmarks.t), (o : Superopt.outcome)) ->
      if not o.verified then Alcotest.failf "%s: verification failed" b.name;
      if not (Sexec.equivalent b.env b.program o.optimized) then
        Alcotest.failf "%s: inequivalent output" b.name)
    (Lazy.force outcomes)

let test_all_concretely_valid () =
  List.iter
    (fun ((b : Suite.Benchmarks.t), (o : Superopt.outcome)) ->
      if not (Superopt.validate_concrete ~env:b.env b.program o.optimized)
      then Alcotest.failf "%s: concrete mismatch" b.name)
    (Lazy.force outcomes)

let test_flops_improvement_coverage () =
  (* Under the blind FLOPs model a large core of the suite still
     optimizes (the paper's measured-model-only cases are excluded:
     power/mul distinctions, transpose materialization, loop overhead,
     fused contractions). *)
  let improved =
    List.filter (fun (_, (o : Superopt.outcome)) -> o.improved)
      (Lazy.force outcomes)
  in
  let must_improve =
    [ "diag_dot"; "log_exp_1"; "log_exp_2"; "scalar_sum"; "common_factor";
      "sum_sum"; "sum_stack"; "sum_diag_dot"; "max_stack"; "trace_dot";
      "synth_1"; "synth_2"; "synth_3"; "synth_4"; "synth_6"; "synth_7";
      "synth_8"; "synth_9"; "synth_12" ]
  in
  List.iter
    (fun name ->
      if
        not
          (List.exists
             (fun ((b : Suite.Benchmarks.t), _) -> b.name = name)
             improved)
      then Alcotest.failf "%s should improve under the FLOPs model" name)
    must_improve

let test_costs_consistent () =
  List.iter
    (fun ((b : Suite.Benchmarks.t), (o : Superopt.outcome)) ->
      let recomputed = Cost.Model.program_cost model b.env o.optimized in
      Alcotest.(check (float 1e-6)) (b.name ^ " cost recomputes") recomputed
        o.optimized_cost)
    (Lazy.force outcomes)

let test_validate_redraws_out_of_domain () =
  (* Regression: out-of-domain trials used to count toward [trials], so a
     pair that is almost never in domain could pass with zero effective
     checks.  Build a pair that differs everywhere on its domain, with a
     threshold tuned from the validator's own RNG stream so that every
     one of the first 16 draws lands out of domain. *)
  let env = [ ("A", Types.float_t [||]) ] in
  let draws n =
    let st = Random.State.make [| 0xbeef |] in
    List.init n (fun _ ->
        match Interp.random_inputs st env with
        | [ (_, v) ] -> Tensor.Ftensor.fold (fun _ x -> x) nan v
        | _ -> assert false)
  in
  let max_of vs = List.fold_left Float.max neg_infinity vs in
  let m16 = max_of (draws 16) and m512 = max_of (draws 512) in
  Alcotest.(check bool) "an in-domain draw exists past the first 16" true
    (m512 > m16);
  let t = (m16 +. m512) /. 2. in
  let a = Ast.App (Log, [ App (Sub, [ Input "A"; Const t ]) ]) in
  let b = Ast.App (Add, [ a; Const 1. ]) in
  Alcotest.(check bool) "inequivalent pair rejected" false
    (Superopt.validate_concrete ~env a b);
  Alcotest.(check bool) "identical pair accepted" true
    (Superopt.validate_concrete ~env a a)

let test_consts_of () =
  let p = Parser.expression "np.power(A, -1) + 3 * A" in
  Alcotest.(check (list (float 0.))) "constants plus unit" [ -1.; 1.; 3. ]
    (Superopt.consts_of p)

let suite =
  [
    Alcotest.test_case "all outputs verified" `Slow test_all_verified;
    Alcotest.test_case "all outputs concretely valid" `Slow
      test_all_concretely_valid;
    Alcotest.test_case "flops-model improvement coverage" `Slow
      test_flops_improvement_coverage;
    Alcotest.test_case "reported costs recompute" `Slow test_costs_consistent;
    Alcotest.test_case "validate_concrete redraws out-of-domain trials"
      `Quick test_validate_redraws_out_of_domain;
    Alcotest.test_case "constant extraction" `Quick test_consts_of;
  ]
