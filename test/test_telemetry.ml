(* The observability layer: JSON emission/parsing, NDJSON export, the
   suite-report schema, and the zero-cost contract of the disabled
   sink. *)
module T = Stenso.Telemetry
module J = T.Json

let roundtrip v =
  match J.of_string (J.to_string v) with
  | Ok v' -> v'
  | Error e -> Alcotest.failf "parse failed on %s: %s" (J.to_string v) e

let test_json_roundtrip () =
  let v =
    J.Obj
      [
        ("null", J.Null);
        ("t", J.Bool true);
        ("n", J.Int (-42));
        ("x", J.Float 1.5);
        ("tiny", J.Float 3.1e-17);
        ("s", J.Str "quote\" slash\\ newline\n tab\t unicode \xe2\x86\x92");
        ("l", J.List [ J.Int 1; J.List []; J.Obj [] ]);
      ]
  in
  Alcotest.(check bool) "value survives a round trip" true (roundtrip v = v);
  (* non-finite floats must still emit valid JSON *)
  (match roundtrip (J.Float Float.nan) with
  | J.Null -> ()
  | other -> Alcotest.failf "nan emitted as %s" (J.to_string other));
  (* parser rejects malformed documents *)
  List.iter
    (fun s ->
      match J.of_string s with
      | Ok _ -> Alcotest.failf "accepted malformed %S" s
      | Error _ -> ())
    [ "{"; "[1,]"; "{\"a\":}"; "1 2"; "\"unterminated"; "tru" ]

let test_sink_records () =
  let t = T.create () in
  Alcotest.(check bool) "recording sink enabled" true (T.enabled t);
  Alcotest.(check bool) "null sink disabled" false (T.enabled T.null);
  T.event t "hello" [ ("n", T.Int 3); ("who", T.Str "world") ];
  T.gauge t "bound" 54.;
  T.gauge t "bound" 18.;
  let out = T.span t "phase" (fun () -> 7) in
  Alcotest.(check int) "span passes the result through" 7 out;
  T.add t "cnt" 5;
  T.incr t "cnt";
  T.Acc.add (T.acc t "secs") 0.25;
  Alcotest.(check int) "events recorded in order" 4
    (List.length (T.events t));
  Alcotest.(check (list (pair string int))) "counter totals" [ ("cnt", 6) ]
    (T.counters t);
  (match T.series t "bound" with
  | [ (ts1, 54.); (ts2, 18.) ] ->
      Alcotest.(check bool) "series timestamps ordered" true (ts1 <= ts2)
  | other ->
      Alcotest.failf "series has %d points" (List.length other));
  (* the same records export as NDJSON: one valid JSON object per line *)
  let lines =
    String.split_on_char '\n' (String.trim (T.ndjson_string t))
  in
  Alcotest.(check int) "events + counter + acc lines" 6 (List.length lines);
  List.iter
    (fun line ->
      match J.of_string line with
      | Ok (J.Obj fields) ->
          Alcotest.(check bool) "line has a kind" true
            (List.mem_assoc "kind" fields)
      | Ok _ -> Alcotest.failf "NDJSON line is not an object: %s" line
      | Error e -> Alcotest.failf "invalid NDJSON line %s: %s" line e)
    lines

let test_null_sink_does_not_allocate () =
  (* The search's hot paths run with the null sink by default: counter
     bumps and guarded event calls must not allocate, or telemetry
     would tax every un-traced synthesis run. *)
  let t = T.null in
  let c = T.counter t "x" in
  let hot i =
    T.Counter.incr c;
    if T.enabled t then T.event t "hot" [ ("i", T.Int i) ];
    T.add t "y" i
  in
  hot 0;
  (* warm-up *)
  let before = Gc.minor_words () in
  for i = 1 to 10_000 do
    hot i
  done;
  let delta = Gc.minor_words () -. before in
  if delta > 256. then
    Alcotest.failf "disabled hot path allocated %.0f words" delta

let test_suite_report_roundtrip () =
  let config =
    Stenso.Config.default |> Stenso.Config.with_estimator `Flops
  in
  let run =
    Suite.Driver.run ~config ~trace:true
      [ Suite.Benchmarks.find "diag_dot" ]
  in
  let r = List.hd run.results in
  Alcotest.(check bool) "diag_dot improves" true r.outcome.improved;
  Alcotest.(check bool) "bound trajectory recorded" true
    (T.series r.tel "search.bound" <> []);
  let doc = Suite.Driver.report ~config run in
  (match Suite.Driver.validate_report doc with
  | Ok () -> ()
  | Error e -> Alcotest.failf "fresh report invalid: %s" e);
  (* schema stability survives serialization *)
  (match J.of_string (J.to_string doc) with
  | Error e -> Alcotest.failf "report does not parse back: %s" e
  | Ok doc' -> (
      match Suite.Driver.validate_report doc' with
      | Ok () -> ()
      | Error e -> Alcotest.failf "re-parsed report invalid: %s" e));
  (* the validator actually rejects schema drift *)
  let broken =
    match doc with
    | J.Obj fields ->
        J.Obj
          (List.map
             (function
               | "schema", _ -> ("schema", J.Str "stenso.suite-report/0")
               | f -> f)
             fields)
    | _ -> Alcotest.fail "report is not an object"
  in
  match Suite.Driver.validate_report broken with
  | Ok () -> Alcotest.fail "validator accepted a wrong schema tag"
  | Error _ -> ()

let test_trace_of_traced_search () =
  (* End-to-end: a traced optimize populates the instrumentation the
     CLI's --trace exports. *)
  let tel = T.create () in
  let env =
    [ ("A", Dsl.Types.float_t [| 3; 4 |]);
      ("B", Dsl.Types.float_t [| 4; 3 |]) ]
  in
  let o =
    Stenso.Superopt.optimize ~tel
      ~config:(Stenso.Config.default |> Stenso.Config.with_estimator `Flops)
      ~env
      (Dsl.Parser.expression "np.diag(np.dot(A, B))")
  in
  Alcotest.(check bool) "optimizes" true o.improved;
  let counters = T.counters tel in
  let has name = List.mem_assoc name counters in
  List.iter
    (fun name ->
      Alcotest.(check bool) (name ^ " counted") true (has name))
    [ "search.nodes"; "search.decomps"; "invert.proposed"; "invert.solved";
      "spec.key_builds" ];
  let spans =
    List.filter (fun (e : T.event) -> e.kind = "span") (T.events tel)
  in
  let span_names = List.map (fun (e : T.event) -> e.name) spans in
  List.iter
    (fun name ->
      Alcotest.(check bool) (name ^ " span present") true
        (List.mem name span_names))
    [ "phase.symbolic_exec"; "phase.stub_enum"; "phase.search" ];
  (* the flat stats and the telemetry counters are the same numbers *)
  Alcotest.(check int) "stats.nodes = counter" o.search.stats.nodes
    (List.assoc "search.nodes" counters)

let suite =
  [
    Alcotest.test_case "JSON round trip" `Quick test_json_roundtrip;
    Alcotest.test_case "sink records and exports NDJSON" `Quick
      test_sink_records;
    Alcotest.test_case "disabled sink allocates nothing" `Quick
      test_null_sink_does_not_allocate;
    Alcotest.test_case "suite report schema round trip" `Quick
      test_suite_report_roundtrip;
    Alcotest.test_case "traced search populates the trace" `Quick
      test_trace_of_traced_search;
  ]
