(* Command-line entry point.

     stenso optimize --program original.tdsl --synth-out optimized.tdsl
     stenso suite --jobs 8 --cost-estimator flops
     stenso profile --cost-cache ops.cache
     stenso serve --socket /tmp/stenso.sock --workers 4
     stenso request --socket /tmp/stenso.sock --program original.tdsl

   The bare legacy invocation (mirroring the artifact's
   `stenso/main.py`) still works as an alias of [optimize]:

     stenso --program original.tdsl --cost-estimator measured

   Program files declare typed inputs and return one expression; see
   `examples/` and the README for the surface syntax. *)

let die fmt = Printf.ksprintf (fun s -> prerr_endline ("stenso: " ^ s); exit 1) fmt

(* EX_DATAERR: the input file is malformed (positioned parse error). *)
let ex_dataerr = 65

let die_dataerr file msg =
  prerr_endline (Printf.sprintf "stenso: %s: %s" file msg);
  exit ex_dataerr

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path contents =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc contents)

(* Emit the same surface syntax the parser accepts, so outputs can be
   fed back in — the same rendering the persistent store serves, so
   cached and fresh runs are byte-identical. *)
let render_program = Dsl.Parser.unparse

let open_store ~tel store_dir =
  let dir =
    match store_dir with Some d -> d | None -> Stenso.Store.default_dir ()
  in
  Stenso.Store.open_store ~tel ~dir ()

let engine_of engine =
  match Stenso.Config.engine_of_string engine with
  | Ok e -> e
  | Error msg -> die "%s" msg

let config_of ?(rules_depth = 0) ~estimator ~engine ~exec ~timeout ~jobs
    ~no_bnb ~no_simplification ~extended_ops ~cost_cache () =
  let estimator =
    match Stenso.Config.estimator_of_string estimator with
    | Ok e -> e
    | Error msg -> die "%s" msg
  in
  Stenso.Config.default
  |> Stenso.Config.with_estimator estimator
  |> Stenso.Config.with_engine (engine_of engine)
  |> Stenso.Config.with_exec_options exec
  |> Stenso.Config.with_timeout timeout
  |> Stenso.Config.with_jobs jobs
  |> Stenso.Config.with_bnb (not no_bnb)
  |> Stenso.Config.with_simplification (not no_simplification)
  |> Stenso.Config.with_extended_ops extended_ops
  |> Stenso.Config.with_rules_depth rules_depth
  |> match cost_cache with
     | Some f -> Stenso.Config.with_cost_cache f
     | None -> Fun.id

(* ------------------------------------------------------------------ *)
(* stenso optimize                                                     *)
(* ------------------------------------------------------------------ *)

let optimize_run program_path synth_out estimator engine exec timeout jobs
    no_bnb no_simplification extended_ops cost_cache rules_depth no_store
    store_dir trace verbose =
  let source =
    match program_path with
    | Some p -> read_file p
    | None -> die "--program is required"
  in
  let env, prog = Dsl.Parser.program source in
  ignore (Dsl.Types.infer env prog);
  let config =
    config_of ~rules_depth ~estimator ~engine ~exec ~timeout ~jobs ~no_bnb
      ~no_simplification ~extended_ops ~cost_cache ()
  in
  let tel =
    match trace with
    | Some _ -> Stenso.Telemetry.create ()
    | None -> Stenso.Telemetry.null
  in
  let store = if no_store then None else Some (open_store ~tel store_dir) in
  let outcome = Stenso.Superopt.optimize ~tel ~config ?store ~env prog in
  (match trace with
  | Some path ->
      let oc = open_out path in
      Fun.protect
        ~finally:(fun () -> close_out_noerr oc)
        (fun () -> Stenso.Telemetry.write_ndjson tel oc)
  | None -> ());
  if verbose then begin
    if outcome.from_cache then
      Format.printf "# served from the persistent store (tier 1 cache hit)@\n"
    else if outcome.tier = 2 then
      Format.printf
        "# served from the mined rule database (tier 2, no search)@\n"
    else begin
      let s = outcome.search.stats in
      Format.printf
        "# search: %d nodes, %d decompositions, %d simp-pruned, %d \
         bnb-pruned,@\n\
         # %.2fs, library of %d stubs%s@\n"
        s.nodes s.decomps s.pruned_simp s.pruned_bnb s.elapsed s.library_size
        (if s.timed_out then " (timed out)" else "")
    end
  end;
  Format.printf "# original  (cost %.6g): %a@\n" outcome.original_cost
    Dsl.Ast.pp outcome.original;
  if outcome.improved then
    Format.printf "# optimized (cost %.6g): %a@\n" outcome.optimized_cost
      Dsl.Ast.pp outcome.optimized
  else Format.printf "# no cheaper equivalent found; keeping the original@\n";
  (match synth_out with
  | Some path ->
      write_file path (render_program env outcome.optimized);
      Format.printf "# written to %s@\n" path
  | None ->
      Format.printf "%s" (render_program env outcome.optimized));
  if outcome.improved && not outcome.verified then exit 2

(* ------------------------------------------------------------------ *)
(* stenso suite                                                        *)
(* ------------------------------------------------------------------ *)

(* Group tokens expand to whole tiers; anything else must be a
   benchmark name.  A token matching neither is fatal — a typo must
   not quietly shrink the selection. *)
let benchmark_groups =
  [
    ("github", Suite.Benchmarks.github);
    ("synthetic", Suite.Benchmarks.synthetic);
    ("masking", Suite.Benchmarks.masking);
    ("ml", Suite.Benchmarks.ml);
    ("lifted", Suite.Benchmarks.lifted);
  ]

let select_benchmarks names =
  match names with
  | [] -> Suite.Benchmarks.all
  | names ->
      List.concat_map
        (fun name ->
          match List.assoc_opt name benchmark_groups with
          | Some tier -> tier
          | None -> (
              match Suite.Benchmarks.find_opt name with
              | Some b -> [ b ]
              | None ->
                  die
                    "unknown benchmark or group %S (groups: %s; see `stenso \
                     suite --list')"
                    name
                    (String.concat ", " (List.map fst benchmark_groups))))
        names

(* The three-pass tiered-serving comparison behind [--tiers-report]:
   baseline (full search, no store), cold tiered (mined rules, empty
   outcome store), warm tiered (repeat — now also hitting the outcome
   store).  All passes cover the same benchmarks with the same jobs. *)
let tiers_run ~config ~benches ~jobs ~store_dir ~quiet path =
  (match Stenso.Config.rules_depth config with
  | Some _ -> ()
  | None -> die "--tiers-report requires --rules-depth");
  let baseline_config = Stenso.Config.with_rules_depth 0 config in
  let pass name cfg store =
    if not quiet then Printf.printf "%s pass...\n%!" name;
    Suite.Driver.run ~config:cfg ?store ~jobs benches
  in
  let baseline = pass "baseline (full search)" baseline_config None in
  let store = Some (open_store ~tel:Stenso.Telemetry.null store_dir) in
  let cold = pass "tiered, cold" config store in
  let warm = pass "tiered, warm" config store in
  let doc = Suite.Driver.tiers_report ~config ~baseline ~cold ~warm () in
  (match Suite.Driver.validate_tiers_report doc with
  | Ok () -> ()
  | Error msg -> die "generated tiers report is invalid: %s" msg);
  write_file path (Stenso.Telemetry.Json.to_string doc ^ "\n");
  if not quiet then begin
    let count (t : Suite.Driver.t) tier =
      List.length
        (List.filter
           (fun (r : Suite.Driver.bench_result) ->
             r.outcome.Stenso.Superopt.tier = tier)
           t.results)
    in
    Printf.printf
      "cold: %d tier-1, %d tier-2, %d tier-3 (%.1fs); warm: %d/%d \
       without search (%.1fs); baseline %.1fs\n"
      (count cold 1) (count cold 2) (count cold 3) cold.elapsed
      (count warm 1 + count warm 2)
      (List.length warm.results)
      warm.elapsed baseline.elapsed;
    Printf.printf "wrote tiers report to %s\n" path
  end

let suite_run list_only names jobs timeout estimator engine exec cost_cache
    rules_depth use_store store_dir out report tiers_report quiet =
  if list_only then
    List.iter
      (fun (group, benches) ->
        Printf.printf "# %s\n" group;
        List.iter
          (fun (b : Suite.Benchmarks.t) ->
            Printf.printf "%-16s %s\n" b.name
              (Dsl.Ast.to_string b.program))
          benches)
      benchmark_groups
  else begin
    let benches = select_benchmarks names in
    let config =
      config_of ~rules_depth ~estimator ~engine ~exec ~timeout ~jobs
        ~no_bnb:false ~no_simplification:false ~extended_ops:false
        ~cost_cache ()
    in
    match tiers_report with
    | Some path -> tiers_run ~config ~benches ~jobs ~store_dir ~quiet path
    | None ->
    let on_result (r : Suite.Driver.bench_result) =
      if not quiet then
        Printf.printf "  %-16s %6.1fs  %s\n%!" r.bench.name r.elapsed
          (if r.outcome.improved then Dsl.Ast.to_string r.outcome.optimized
           else "(no cheaper variant)")
    in
    if not quiet then
      Printf.printf
        "Superoptimizing %d benchmarks (%s estimator, %d jobs)...\n%!"
        (List.length benches)
        (Stenso.Config.estimator_name (Stenso.Config.estimator config))
        jobs;
    (* Off by default: the suite is the determinism yardstick, and a
       store warmed by a previous run would skew timing comparisons. *)
    let store =
      if use_store then
        Some (open_store ~tel:Stenso.Telemetry.null store_dir)
      else None
    in
    let ({ Suite.Driver.results; elapsed } as run_result) =
      Suite.Driver.run ~config ?store ~jobs ~trace:(Option.is_some report)
        ~on_result benches
    in
    (match report with
    | Some path ->
        let doc = Suite.Driver.report ~config run_result in
        write_file path (Stenso.Telemetry.Json.to_string doc ^ "\n");
        if not quiet then Printf.printf "wrote suite report to %s\n" path
    | None -> ());
    (* The deterministic result table: no timings, stable formatting, so
       parallel and sequential runs of a deterministic estimator can be
       compared byte for byte. *)
    let table =
      String.concat ""
        (List.map
           (fun (r : Suite.Driver.bench_result) ->
             Printf.sprintf "%s\t%s\t%.9g\t%s\n" r.bench.name
               (if r.outcome.improved then "improved" else "kept")
               r.outcome.optimized_cost
               (Dsl.Ast.to_string r.outcome.optimized))
           results)
    in
    (match out with
    | Some path ->
        write_file path table;
        if not quiet then
          Printf.printf "wrote %d results to %s (%.1fs total)\n"
            (List.length results) path elapsed
    | None -> print_string table);
    if not quiet then
      let improved =
        List.length
          (List.filter
             (fun (r : Suite.Driver.bench_result) -> r.outcome.improved)
             results)
      in
      Printf.printf "# %d/%d improved, %.1fs wall clock\n" improved
        (List.length results) elapsed
  end

(* ------------------------------------------------------------------ *)
(* stenso mine                                                         *)
(* ------------------------------------------------------------------ *)

let mine_run names depth jobs estimator cost_cache store_dir quiet =
  (* Offline rule mining: batch-superoptimize the bounded stub space of
     each benchmark environment and persist the discovered rewrite
     rules and per-spec optima into the store, where tiered serving
     ([--rules-depth]) picks them up. *)
  if depth < 1 then die "--depth must be at least 1";
  let benches = select_benchmarks names in
  let config =
    config_of ~estimator ~engine:"vm" ~exec:Stenso.Exec.Options.default
      ~timeout:600. ~jobs:1 ~no_bnb:false ~no_simplification:false
      ~extended_ops:false ~cost_cache ()
  in
  let model = Stenso.Config.model config in
  let store = open_store ~tel:Stenso.Telemetry.null store_dir in
  if not quiet then
    Printf.printf
      "Mining depth-%d rules over %d benchmark environments (%s \
       estimator) into %s...\n\
       %!"
      depth (List.length benches) model.Cost.Model.name
      (Stenso.Store.dir store);
  let on_env (s : Stenso.Mine.env_stats) =
    if not quiet then
      Printf.printf
        "  %-16s %6d stubs, %6d dups -> %4d rules, %6d optima  %6.1fs\n%!"
        s.label s.stubs s.dups s.rules s.optima s.elapsed
  in
  let envs =
    List.map (fun (b : Suite.Benchmarks.t) -> (b.name, b.env)) benches
  in
  let stats = Stenso.Mine.mine ~jobs ~on_env ~depth ~model ~store envs in
  let total f = List.fold_left (fun acc s -> acc + f s) 0 stats in
  Printf.printf
    "# mined %d environments (%d shared): %d rules, %d optima\n"
    (List.length stats)
    (List.length benches - List.length stats)
    (total (fun (s : Stenso.Mine.env_stats) -> s.rules))
    (total (fun (s : Stenso.Mine.env_stats) -> s.optima))

(* ------------------------------------------------------------------ *)
(* stenso run                                                          *)
(* ------------------------------------------------------------------ *)

let run_run program_path engine exec seed trace verbose =
  (* Execute a program on random seeded inputs through the selected
     engine — a quick way to exercise the compiled path and inspect its
     fusion/arena statistics on a concrete program. *)
  let source = read_file program_path in
  let env, prog =
    try Dsl.Parser.program source
    with Dsl.Parser.Parse_error msg -> die_dataerr program_path msg
  in
  ignore (Dsl.Types.infer env prog);
  let engine = engine_of engine in
  let tel =
    match trace with
    | Some _ -> Stenso.Telemetry.create ()
    | None -> Stenso.Telemetry.null
  in
  let st = Random.State.make [| seed |] in
  let inputs = Dsl.Interp.random_inputs st env in
  let lookup n = List.assoc n inputs in
  let t0 = Unix.gettimeofday () in
  let result, stats =
    match engine with
    | `Interp -> (Stenso.Exec.eval `Interp ~env lookup prog, None)
    | `Vm ->
        let options = Stenso.Exec.Options.with_telemetry tel exec in
        let compiled = Stenso.Exec.compile ~options ~env prog in
        (Stenso.Exec.run compiled lookup, Some (Stenso.Exec.stats compiled))
  in
  let elapsed = Unix.gettimeofday () -. t0 in
  if verbose then begin
    Format.printf "# engine %s, seed %d, %.6fs@\n"
      (Stenso.Config.engine_name engine)
      seed elapsed;
    match stats with
    | None -> ()
    | Some s ->
        Format.printf
          "# plan: %d IR nodes, %d steps, %d ops fused, %d consts folded,@\n\
           # %d buffers reused, %d parallel strips, arena %d slots / %d \
           bytes@\n\
           # exec options: %s@\n"
          s.ir_nodes s.steps s.ops_fused s.consts_folded s.buffers_reused
          s.parallel_strips s.arena_slots s.arena_bytes
          (Stenso.Exec.Options.fingerprint exec)
  end;
  Format.printf "%a@." Tensor.Ftensor.pp result;
  match trace with
  | Some path ->
      let oc = open_out path in
      Fun.protect
        ~finally:(fun () -> close_out_noerr oc)
        (fun () -> Stenso.Telemetry.write_ndjson tel oc)
  | None -> ()

(* ------------------------------------------------------------------ *)
(* stenso lift                                                         *)
(* ------------------------------------------------------------------ *)

let zero_lift_stats =
  {
    Stenso.Lift.sketches = 0;
    pruned_by_value = 0;
    certified = 0;
    library_size = 0;
    lift_s = 0.;
    verify_s = 0.;
  }

let lift_entry_of name ~lifted ~program ~optimized ~improved
    (s : Stenso.Lift.stats) =
  {
    Suite.Driver.lift_name = name;
    lifted;
    lifted_program = program;
    optimized_program = optimized;
    lift_improved = improved;
    sketches = s.sketches;
    pruned_by_value = s.pruned_by_value;
    certified = s.certified;
    library_size = s.library_size;
    lift_s = s.lift_s;
    lift_verify_s = s.verify_s;
    lift_speedup = None;
  }

let lift_run file benches estimator engine exec timeout jobs cost_cache
    no_store store_dir samples seed synth_out report trace quiet =
  (* Lift scalar loop-nest kernels into the DSL and superoptimize the
     result: FILE is a kernel in the loop language, [--bench] names a
     bundled kernel from the lifted tier (or [all]). *)
  let sources =
    (match file with
    | Some p ->
        [ (Filename.remove_extension (Filename.basename p), read_file p) ]
    | None -> [])
    @ List.concat_map
        (fun name ->
          if String.equal name "all" then
            List.map
              (fun (k : Suite.Lifted.t) -> (k.name, k.source))
              Suite.Lifted.all
          else
            match Suite.Lifted.find_opt name with
            | Some k -> [ (k.name, k.source) ]
            | None ->
                die "unknown bundled kernel %S (kernels: %s)" name
                  (String.concat ", "
                     (List.map
                        (fun (k : Suite.Lifted.t) -> k.name)
                        Suite.Lifted.all)))
        benches
  in
  if sources = [] then die "nothing to lift: pass a kernel FILE or --bench";
  (match synth_out with
  | Some _ when List.length sources > 1 ->
      die "--synth-out applies to a single kernel"
  | _ -> ());
  let config =
    config_of ~estimator ~engine ~exec ~timeout ~jobs ~no_bnb:false
      ~no_simplification:false ~extended_ops:false ~cost_cache ()
  in
  let tel =
    match trace with
    | Some _ -> Stenso.Telemetry.create ()
    | None -> Stenso.Telemetry.null
  in
  let store = if no_store then None else Some (open_store ~tel store_dir) in
  let stub_cache = Stenso.Stub.Cache.create () in
  let t0 = Unix.gettimeofday () in
  let entries, failures =
    List.fold_left
      (fun (entries, failures) (name, source) ->
        let kernel =
          try Stenso.Lift.Loop_parser.kernel source
          with Stenso.Lift.Loop_parser.Parse_error msg ->
            die_dataerr name msg
        in
        match
          Stenso.Lift.optimize ~tel ~config ?store ~stub_cache ~samples
            ~seed kernel
        with
        | Ok (l, outcome) ->
            if not quiet then
              Printf.printf
                "# %s: lifted (%d sketches, %d value-pruned, library %d, \
                 %.2fs + %.2fs verify)%s\n\
                 %!"
                name l.stats.sketches l.stats.pruned_by_value
                l.stats.library_size l.stats.lift_s l.stats.verify_s
                (if outcome.Stenso.Superopt.improved then
                   "; superoptimized"
                 else "");
            let rendered =
              render_program l.env outcome.Stenso.Superopt.optimized
            in
            (match synth_out with
            | Some path ->
                write_file path rendered;
                if not quiet then Printf.printf "# written to %s\n" path
            | None -> print_string rendered);
            let entry =
              lift_entry_of name ~lifted:true
                ~program:(Dsl.Ast.to_string l.prog)
                ~optimized:
                  (Dsl.Ast.to_string outcome.Stenso.Superopt.optimized)
                ~improved:outcome.Stenso.Superopt.improved l.stats
            in
            (entry :: entries, failures)
        | Error e ->
            Printf.eprintf "stenso: %s: %s\n%!" name
              (Stenso.Lift.error_message e);
            let stats =
              match e with
              | Stenso.Lift.Not_lifted s -> s
              | Stenso.Lift.Unsupported _ -> zero_lift_stats
            in
            let entry =
              lift_entry_of name ~lifted:false ~program:"" ~optimized:""
                ~improved:false stats
            in
            (entry :: entries, failures + 1))
      ([], 0) sources
  in
  let entries = List.rev entries in
  (match report with
  | Some path ->
      let doc =
        Suite.Driver.lift_report ~config
          ~elapsed:(Unix.gettimeofday () -. t0)
          entries
      in
      (match Suite.Driver.validate_lift_report doc with
      | Ok () -> ()
      | Error msg -> die "generated lift report is invalid: %s" msg);
      write_file path (Stenso.Telemetry.Json.to_string doc ^ "\n");
      if not quiet then Printf.printf "# wrote lift report to %s\n" path
  | None -> ());
  (match trace with
  | Some path ->
      let oc = open_out path in
      Fun.protect
        ~finally:(fun () -> close_out_noerr oc)
        (fun () -> Stenso.Telemetry.write_ndjson tel oc)
  | None -> ());
  if failures > 0 then exit 1

(* ------------------------------------------------------------------ *)
(* stenso profile                                                      *)
(* ------------------------------------------------------------------ *)

let cache_entries file =
  match open_in file with
  | exception Sys_error _ -> 0
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          let n = ref 0 in
          (try
             while true do
               ignore (input_line ic);
               incr n
             done
           with End_of_file -> ());
          !n)

let profile_run names cost_cache extended_ops =
  (* The measured estimator's offline phase, run ahead of time: stub
     enumeration over each benchmark's inputs requests the cost of every
     operation the synthesis search will consider, and the table persists
     to [--cost-cache] for later `optimize`/`suite` runs to load. *)
  let benches = select_benchmarks names in
  let model = Cost.Model.measured ~cache_file:cost_cache () in
  let before = cache_entries cost_cache in
  List.iter
    (fun (b : Suite.Benchmarks.t) ->
      let t0 = Unix.gettimeofday () in
      let stub_config =
        { Stenso.Stub.default_config with extended_ops }
      in
      ignore
        (Stenso.Stub.enumerate ~config:stub_config ~model
           ~consts:(Stenso.Superopt.consts_of b.program)
           b.env);
      ignore (Cost.Model.program_cost model b.env b.program);
      Printf.printf "  %-16s %6.1fs\n%!" b.name
        (Unix.gettimeofday () -. t0))
    benches;
  Printf.printf "%s: %d entries (%d new)\n" cost_cache
    (cache_entries cost_cache)
    (cache_entries cost_cache - before)

(* ------------------------------------------------------------------ *)
(* stenso report                                                       *)
(* ------------------------------------------------------------------ *)

let report_run file min_speedup min_success =
  (* Validate an archived report: parse, dispatch on the schema field,
     check structure (and, for exec-bench documents, the optional
     performance floor), print a one-line summary.  CI runs this on
     freshly generated reports so the BENCH_*.json trajectory keeps a
     stable shape. *)
  let contents = read_file file in
  match Stenso.Telemetry.Json.of_string contents with
  | Error msg -> die "%s: invalid JSON: %s" file msg
  | Ok doc ->
      let module J = Stenso.Telemetry.Json in
      let int name =
        Option.value ~default:0 (Option.bind (J.member name doc) J.to_int_opt)
      in
      let str name =
        Option.value ~default:"?"
          (Option.bind (J.member name doc) J.to_string_opt)
      in
      let float name =
        Option.value ~default:Float.nan
          (Option.bind (J.member name doc) J.to_float_opt)
      in
      let schema = str "schema" in
      (match min_success with
      | Some _
        when not (String.equal schema Suite.Driver.lift_schema_version) ->
          die "%s: --min-success only applies to %s reports" file
            Suite.Driver.lift_schema_version
      | _ -> ());
      if String.equal schema Suite.Driver.lift_schema_version then (
        (match min_speedup with
        | Some _ ->
            die "%s: --min-speedup only applies to %s reports" file
              Suite.Driver.exec_bench_schema_version
        | None -> ());
        match Suite.Driver.validate_lift_report ?min_success doc with
        | Error msg -> die "%s: invalid lift report: %s" file msg
        | Ok () ->
            Printf.printf
              "%s: valid %s (%d kernels, %d lifted, %.0f%% success%s)\n" file
              schema (int "n_kernels") (int "n_lifted")
              (100. *. float "success_rate")
              (match min_success with
              | None -> ""
              | Some m -> Printf.sprintf ", at least %.0f%% required" (100. *. m)))
      else if String.equal schema Suite.Driver.exec_bench_schema_version then (
        match Suite.Driver.validate_exec_bench ?min_speedup doc with
        | Error msg -> die "%s: invalid exec-bench report: %s" file msg
        | Ok () ->
            Printf.printf
              "%s: valid %s (%d benchmarks, %.2fx geomean, options %s%s)\n"
              file schema (int "n_benchmarks")
              (float "geomean_speedup")
              (str "options")
              (match min_speedup with
              | None -> ""
              | Some m -> Printf.sprintf ", all above %.2fx" m))
      else if String.equal schema Suite.Driver.tiers_schema_version then (
        (match min_speedup with
        | Some _ ->
            die "%s: --min-speedup only applies to %s reports" file
              Suite.Driver.exec_bench_schema_version
        | None -> ());
        match Suite.Driver.validate_tiers_report doc with
        | Error msg -> die "%s: invalid tiers report: %s" file msg
        | Ok () ->
            let pass name =
              match J.member name doc with
              | Some p ->
                  let i f =
                    Option.value ~default:0
                      (Option.bind (J.member f p) J.to_int_opt)
                  in
                  let frac =
                    Option.value ~default:Float.nan
                      (Option.bind (J.member "tier12_fraction" p)
                         J.to_float_opt)
                  in
                  Printf.sprintf "%s %d/%d/%d (%.0f%% without search)" name
                    (i "tier1") (i "tier2") (i "tier3") (100. *. frac)
              | None -> name ^ " ?"
            in
            Printf.printf
              "%s: valid %s (%s estimator, depth %d, %d benchmarks; %s; \
               %s; %.1fx warm speedup, %d cost mismatches)\n"
              file schema (str "estimator") (int "rules_depth")
              (int "n_benchmarks") (pass "cold") (pass "warm")
              (float "warm_speedup")
              (int "n_cost_mismatches"))
      else if String.equal schema Suite.Driver.mlsuite_schema_version then (
        match Suite.Driver.validate_mlsuite ?min_speedup doc with
        | Error msg -> die "%s: invalid mlsuite report: %s" file msg
        | Ok () ->
            let sub name field =
              match J.member name doc with
              | Some d ->
                  Option.value ~default:Float.nan
                    (Option.bind (J.member field d) J.to_float_opt)
              | None -> Float.nan
            in
            let subi name field =
              match J.member name doc with
              | Some d ->
                  Option.value ~default:0
                    (Option.bind (J.member field d) J.to_int_opt)
              | None -> 0
            in
            Printf.printf
              "%s: valid %s (%d kernels, %.2fx VM geomean; tiers: %.1fx \
               warm speedup, %d cost mismatches%s)\n"
              file schema
              (subi "exec" "n_benchmarks")
              (sub "exec" "geomean_speedup")
              (sub "tiers" "warm_speedup")
              (subi "tiers" "n_cost_mismatches")
              (match min_speedup with
              | None -> ""
              | Some m -> Printf.sprintf "; all above %.2fx" m))
      else if String.equal schema Suite.Driver.serve_load_schema_version then (
        (match min_speedup with
        | Some _ ->
            die "%s: --min-speedup only applies to %s reports" file
              Suite.Driver.exec_bench_schema_version
        | None -> ());
        match Suite.Driver.validate_serve_load doc with
        | Error msg -> die "%s: invalid serve-load report: %s" file msg
        | Ok () ->
            let lat name =
              match J.member "latency" doc with
              | Some l ->
                  Option.value ~default:Float.nan
                    (Option.bind (J.member name l) J.to_float_opt)
              | None -> Float.nan
            in
            Printf.printf
              "%s: valid %s (%d connections, %d requests, %.0f req/s; p50 \
               %.2f ms, p95 %.2f, p99 %.2f; %d coalesced, %d refined, %d \
               busy, %d protocol errors)\n"
              file schema (int "concurrency") (int "n_requests")
              (float "throughput_rps")
              (1000. *. lat "p50")
              (1000. *. lat "p95")
              (1000. *. lat "p99")
              (int "n_coalesced") (int "n_refined") (int "n_busy")
              (int "n_protocol_errors"))
      else (
        (match min_speedup with
        | Some _ ->
            die "%s: --min-speedup only applies to %s reports" file
              Suite.Driver.exec_bench_schema_version
        | None -> ());
        match Suite.Driver.validate_report doc with
        | Error msg -> die "%s: invalid suite report: %s" file msg
        | Ok () ->
            Printf.printf
              "%s: valid %s (%s estimator, %d benchmarks, %d improved)\n" file
              schema (str "estimator") (int "n_benchmarks") (int "n_improved"))

(* ------------------------------------------------------------------ *)
(* stenso serve / stenso request                                       *)
(* ------------------------------------------------------------------ *)

let default_socket =
  Filename.concat (Filename.get_temp_dir_name ()) "stenso.sock"

let parse_tcp spec =
  match Stenso.Net.Endpoint.parse spec with
  | Ok (Stenso.Net.Endpoint.Tcp _ as e) -> e
  | Ok (Stenso.Net.Endpoint.Unix_sock _) ->
      die "--tcp expects HOST:PORT, got %S" spec
  | Error msg -> die "--tcp: %s" msg

let parse_endpoints s =
  match Stenso.Net.Endpoint.parse_list s with
  | Ok eps -> eps
  | Error msg -> die "--endpoints: %s" msg

let serve_run socket tcp workers queue_capacity max_conns read_deadline
    write_deadline no_refine estimator exec timeout no_bnb no_simplification
    extended_ops cost_cache rules_depth no_store store_dir trace =
  let config =
    config_of ~rules_depth ~estimator ~engine:"vm" ~exec ~timeout ~jobs:1
      ~no_bnb ~no_simplification ~extended_ops ~cost_cache ()
  in
  let tel =
    match trace with
    | Some _ -> Stenso.Telemetry.create ()
    | None -> Stenso.Telemetry.null
  in
  let store = if no_store then None else Some (open_store ~tel store_dir) in
  let listeners =
    (if String.equal socket "" then []
     else [ Stenso.Net.Endpoint.Unix_sock socket ])
    @ List.map parse_tcp tcp
  in
  if listeners = [] then die "nothing to listen on (--socket \"\" and no --tcp)";
  Printf.printf "stenso %s serving (%d workers, queue %d, %d conns max%s%s)\n%!"
    Stenso.Version.current workers queue_capacity max_conns
    (match store with
    | Some s -> ", store " ^ Stenso.Store.dir s
    | None -> ", no store")
    (if no_refine then ", refinement off" else "");
  Stenso.Net.serve ~tel ?store ~workers ~queue_capacity ~max_conns
    ~read_deadline ~write_deadline ~background:(not no_refine)
    ~on_bound:(fun eps ->
      (* One line per listener with the *bound* address — a TCP
         listener requested on port 0 reports its real ephemeral port
         here, which scripts grep for. *)
      List.iter
        (fun e ->
          Printf.printf "listening on %s\n%!"
            (Stenso.Net.Endpoint.to_string e))
        eps)
    ~base:config ~listeners ();
  match trace with
  | Some path ->
      let oc = open_out path in
      Fun.protect
        ~finally:(fun () -> close_out_noerr oc)
        (fun () -> Stenso.Telemetry.write_ndjson tel oc)
  | None -> ()

(* Exit codes: 0 ok, 1 protocol [ok:false] or transport failure, 75
   (EX_TEMPFAIL) when every replica shed the request even after jittered
   retries — transient by definition, scripts may re-run later. *)
let ex_tempfail = 75

let request_run endpoints socket program_path id estimator timeout io_timeout
    busy_retries =
  let module J = Stenso.Telemetry.Json in
  let source =
    match program_path with
    | Some p -> read_file p
    | None -> die "--program is required"
  in
  let endpoints =
    match endpoints with
    | Some s -> parse_endpoints s
    | None -> [ Stenso.Net.Endpoint.Unix_sock socket ]
  in
  let overrides =
    List.filter_map Fun.id
      [
        Option.map (fun e -> ("cost_estimator", J.Str e)) estimator;
        Option.map (fun t -> ("timeout", J.Float t)) timeout;
      ]
  in
  let fields =
    (match id with Some i -> [ ("id", J.Str i) ] | None -> [])
    @ [ ("program", J.Str source) ]
    @ (match overrides with [] -> [] | o -> [ ("config", J.Obj o) ])
  in
  match
    Stenso.Serve.request ~timeout:io_timeout ~busy_retries ~endpoints
      (J.to_string (J.Obj fields))
  with
  | Stenso.Serve.Transport msg -> die "%s" msg
  | Stenso.Serve.Busy ->
      prerr_endline
        "stenso: all endpoints busy (retries exhausted); try again later";
      exit ex_tempfail
  | Stenso.Serve.Reply resp ->
      print_endline resp;
      let ok =
        match J.of_string resp with
        | Ok doc ->
            Option.value ~default:false
              (Option.bind (J.member "ok" doc) J.to_bool_opt)
        | Error _ -> false
      in
      if not ok then exit 1

(* ------------------------------------------------------------------ *)
(* stenso loadgen                                                      *)
(* ------------------------------------------------------------------ *)

let loadgen_run endpoints names concurrency duration timeout no_warmup
    warmup_timeout settle estimator report quiet =
  let endpoints =
    match endpoints with
    | Some s -> parse_endpoints s
    | None -> [ Stenso.Net.Endpoint.Unix_sock default_socket ]
  in
  if concurrency < 1 then die "--concurrency must be at least 1";
  if duration <= 0. then die "--duration must be positive";
  let benches = select_benchmarks names in
  let module J = Stenso.Telemetry.Json in
  let line_of (b : Suite.Benchmarks.t) =
    J.to_string
      (J.Obj
         [
           ("id", J.Str b.name);
           ("program", J.Str (render_program b.env b.program));
         ])
  in
  let lines = Array.of_list (List.map line_of benches) in
  if not quiet then
    Printf.printf
      "replaying %d benchmarks against %s: %d connections, %.0fs%s\n%!"
      (Array.length lines)
      (String.concat ","
         (List.map Stenso.Net.Endpoint.to_string endpoints))
      concurrency duration
      (if no_warmup then "" else " (after warmup)");
  let cfg =
    {
      Stenso.Net.Loadgen.endpoints;
      concurrency;
      duration;
      timeout;
      warmup_lines = (if no_warmup then [] else Array.to_list lines);
      warmup_timeout;
      settle;
      lines;
    }
  in
  let (stats : Stenso.Net.Loadgen.stats) =
    Stenso.Net.Loadgen.run ~classify:Suite.Driver.classify_serve_response cfg
  in
  if Array.length stats.samples = 0 then
    die "no responses at all (%d transport errors) — is the daemon running?"
      stats.n_transport_errors;
  let config =
    config_of ~estimator ~engine:"vm" ~exec:Stenso.Exec.Options.default
      ~timeout:600. ~jobs:1 ~no_bnb:false ~no_simplification:false
      ~extended_ops:false ~cost_cache:None ()
  in
  let doc =
    Suite.Driver.serve_load_report ~config
      ~endpoints:(List.map Stenso.Net.Endpoint.to_string endpoints)
      ~concurrency ~duration
      ~benchmarks:(List.map (fun (b : Suite.Benchmarks.t) -> b.name) benches)
      stats
  in
  (match Suite.Driver.validate_serve_load doc with
  | Ok () -> ()
  | Error msg -> die "generated serve-load report is invalid: %s" msg);
  (match report with
  | Some path ->
      write_file path (J.to_string doc ^ "\n");
      if not quiet then Printf.printf "wrote serve-load report to %s\n" path
  | None -> print_endline (J.to_string doc));
  if not quiet then begin
    let int name =
      Option.value ~default:0 (Option.bind (J.member name doc) J.to_int_opt)
    in
    let float name =
      Option.value ~default:Float.nan
        (Option.bind (J.member name doc) J.to_float_opt)
    in
    let lat name =
      match J.member "latency" doc with
      | Some l ->
          Option.value ~default:Float.nan
            (Option.bind (J.member name l) J.to_float_opt)
      | None -> Float.nan
    in
    Printf.printf
      "# %d requests in %.1fs: %.0f req/s; p50 %.2f ms, p95 %.2f, p99 \
       %.2f; %d coalesced, %d refined, %d busy, %d protocol errors, %d \
       transport errors\n"
      (int "n_requests") (float "elapsed") (float "throughput_rps")
      (1000. *. lat "p50") (1000. *. lat "p95") (1000. *. lat "p99")
      (int "n_coalesced") (int "n_refined") (int "n_busy")
      (int "n_protocol_errors")
      (int "n_transport_errors")
  end

(* ------------------------------------------------------------------ *)
(* Command line                                                        *)
(* ------------------------------------------------------------------ *)

open Cmdliner

let program_arg =
  Arg.(
    value
    & opt (some file) None
    & info [ "program" ] ~docv:"FILE" ~doc:"Source program to superoptimize.")

let synth_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "synth_out"; "synth-out" ] ~docv:"FILE"
        ~doc:"Output file for the synthesized program (stdout if omitted).")

let estimator_arg =
  Arg.(
    value & opt string "measured"
    & info
        [ "cost_estimator"; "cost-estimator" ]
        ~docv:"NAME"
        ~doc:"Cost estimator: $(b,flops), $(b,roofline), or $(b,measured).")

let timeout_arg =
  Arg.(
    value & opt float 600.
    & info [ "timeout" ] ~docv:"SECONDS"
        ~doc:"Synthesis time budget (per benchmark for $(b,suite)).")

let engine_arg =
  Arg.(
    value & opt string "vm"
    & info [ "engine" ] ~docv:"NAME"
        ~doc:
          "Execution engine for concrete runs (measured-model profiling \
           and candidate validation): $(b,vm) (compiled, default) or \
           $(b,interp) (tree-walking reference).")

let exec_domains_arg =
  Arg.(
    value & opt int 0
    & info [ "exec-domains" ] ~docv:"N"
        ~doc:
          "Parallel lanes the compiled VM may fan a single step out over \
           (long fused strips, reductions, tiled kernels).  Default: \
           min 8 (recommended domain count).  Results are bitwise \
           independent of N.")

let exec_tile_arg =
  Arg.(
    value & opt int 0
    & info [ "exec-tile" ] ~docv:"N"
        ~doc:
          "Cache-block edge of the VM's matmul and transpose kernels \
           (default 64, minimum 4).")

let exec_no_fusion_arg =
  Arg.(
    value & flag
    & info [ "exec-no-fusion" ]
        ~doc:
          "Disable elementwise fusion in the VM planner (every operation \
           materializes; also disables reduction fusion).")

let exec_no_reduction_fusion_arg =
  Arg.(
    value & flag
    & info [ "exec-no-reduction-fusion" ]
        ~doc:
          "Keep elementwise fusion but do not inline producers into \
           $(b,sum)/$(b,max) reduction loops.")

(* One term shared by every command that can reach the compiled VM; it
   folds the --exec-* flags over [Exec.Options.default], so the options
   record stays the single configuration path. *)
let exec_options_term =
  let build domains tile no_fusion no_reduction_fusion =
    let open Stenso.Exec in
    Options.default
    |> (if domains > 0 then Options.with_domains domains else Fun.id)
    |> (if tile > 0 then Options.with_tile tile else Fun.id)
    |> (if no_fusion then Options.with_fusion false else Fun.id)
    |>
    if no_reduction_fusion then Options.with_reduction_fusion false
    else Fun.id
  in
  Term.(
    const build $ exec_domains_arg $ exec_tile_arg $ exec_no_fusion_arg
    $ exec_no_reduction_fusion_arg)

let jobs_arg =
  Arg.(
    value & opt int 1
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Worker domains.  For $(b,optimize): parallelize stub \
           enumeration and the root of the search.  For $(b,suite): \
           superoptimize N benchmarks concurrently.  Results are \
           independent of N.")

let no_bnb_arg =
  Arg.(
    value & flag
    & info [ "no-bnb" ]
        ~doc:"Disable branch-and-bound pruning (simplification only).")

let no_simp_arg =
  Arg.(
    value & flag
    & info [ "no-simplification" ]
        ~doc:"Disable the simplification objective (not recommended).")

let extended_ops_arg =
  Arg.(
    value & flag
    & info [ "extended-ops" ]
        ~doc:
          "Include the masking operations (triu/tril/less/where) in the \
           synthesis grammar.")

let cost_cache_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "cost-cache" ] ~docv:"FILE"
        ~doc:
          "Persist the measured cost model's profiling table, amortizing \
           the offline phase across runs (see $(b,stenso profile)).")

let rules_depth_arg =
  Arg.(
    value & opt int 0
    & info [ "rules-depth" ] ~docv:"N"
        ~doc:
          "Enable tiered serving against a rule database mined at depth \
           $(docv) (see $(b,stenso mine)): store lookup, then mined-rule \
           rewriting + e-graph saturation, then the full search only \
           when the database cannot certify an answer.  0 (default) \
           disables tier 2.")

let no_store_arg =
  Arg.(
    value & flag
    & info [ "no-store" ]
        ~doc:
          "Do not consult or update the persistent synthesis store; \
           always run the search.")

let store_dir_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "store-dir" ] ~docv:"DIR"
        ~doc:
          "Persistent synthesis store directory (default: \
           $(b,\\$STENSO_CACHE_DIR), else $(b,~/.cache/stenso)).")

let socket_arg =
  Arg.(
    value & opt string default_socket
    & info [ "socket" ] ~docv:"PATH"
        ~doc:"Unix-domain socket path the daemon listens on.")

let verbose_arg =
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Print search statistics.")

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Record a synthesis telemetry trace (phase timings, search \
           counters, prune breakdown, bound trajectory) and write it to \
           FILE as NDJSON — one JSON object per line.")

let optimize_term =
  Term.(
    const optimize_run $ program_arg $ synth_out_arg $ estimator_arg
    $ engine_arg $ exec_options_term $ timeout_arg $ jobs_arg $ no_bnb_arg
    $ no_simp_arg $ extended_ops_arg $ cost_cache_arg $ rules_depth_arg
    $ no_store_arg $ store_dir_arg $ trace_arg $ verbose_arg)

let optimize_cmd =
  Cmd.v
    (Cmd.info "optimize"
       ~doc:"Superoptimize one tensor program (the default command).")
    optimize_term

let suite_cmd =
  let list_arg =
    Arg.(
      value & flag
      & info [ "list" ] ~doc:"List the bundled benchmarks and exit.")
  in
  let benchmarks_arg =
    Arg.(
      value
      & opt (list string) []
      & info [ "benchmarks" ] ~docv:"NAMES"
          ~doc:
            "Comma-separated benchmark names or group tokens (github, \
             synthetic, masking, ml, lifted); default: the paper's 33.")
  in
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "out" ] ~docv:"FILE"
          ~doc:"Write the result table to FILE instead of stdout.")
  in
  let quiet_arg =
    Arg.(
      value & flag
      & info [ "quiet" ]
          ~doc:
            "Print only the deterministic result table (no progress or \
             timing lines).")
  in
  let use_store_arg =
    Arg.(
      value & flag
      & info [ "store" ]
          ~doc:
            "Serve benchmarks cache-first from the persistent synthesis \
             store and record fresh outcomes into it (off by default so \
             suite runs stay comparable).")
  in
  let report_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "report" ] ~docv:"FILE"
          ~doc:
            "Write a schema-stable JSON suite report \
             ($(b,stenso.suite-report/1)): per-benchmark costs, speedup, \
             synthesis time, search statistics and the branch-and-bound \
             bound trajectory.  Validate with $(b,stenso report FILE).")
  in
  let tiers_report_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "tiers-report" ] ~docv:"FILE"
          ~doc:
            "Run the tiered-serving comparison instead of a plain suite \
             run — baseline full search, then a cold and a warm tiered \
             pass against the store's mined rule database (requires \
             $(b,--rules-depth)) — and write it as \
             $(b,stenso.tiers/1).  Validate with $(b,stenso report \
             FILE).")
  in
  Cmd.v
    (Cmd.info "suite"
       ~doc:
         "Superoptimize the bundled benchmark suite on a bounded worker \
          pool.")
    Term.(
      const suite_run $ list_arg $ benchmarks_arg $ jobs_arg $ timeout_arg
      $ estimator_arg $ engine_arg $ exec_options_term $ cost_cache_arg
      $ rules_depth_arg $ use_store_arg $ store_dir_arg $ out_arg
      $ report_arg $ tiers_report_arg $ quiet_arg)

let mine_cmd =
  let depth_arg =
    Arg.(
      value & opt int 2
      & info [ "depth" ] ~docv:"N"
          ~doc:
            "Mining depth: the stub space enumerated and \
             batch-superoptimized per environment (2 is fast; 3 is much \
             larger but captures deeper optima).  Must match the \
             $(b,--rules-depth) serving uses.")
  in
  let benchmarks_arg =
    Arg.(
      value
      & opt (list string) []
      & info [ "benchmarks" ] ~docv:"NAMES"
          ~doc:
            "Comma-separated benchmark names whose input environments to \
             mine (default: all 33; shared environments mine once).")
  in
  let quiet_arg =
    Arg.(
      value & flag
      & info [ "quiet" ] ~doc:"Print only the final summary line.")
  in
  Cmd.v
    (Cmd.info "mine"
       ~doc:
         "Batch-superoptimize the bounded stub space of each benchmark \
          environment offline — every semantic duplicate the enumeration \
          collapses is an equivalence proven by construction — and \
          persist the generalized rewrite rules plus the per-spec optima \
          table into the store ($(b,stenso.rules/1)), where \
          $(b,optimize --rules-depth) serves from them.")
    Term.(
      const mine_run $ benchmarks_arg $ depth_arg $ jobs_arg $ estimator_arg
      $ cost_cache_arg $ store_dir_arg $ quiet_arg)

let run_cmd =
  let prog_pos_arg =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"PROG" ~doc:"Program file to execute.")
  in
  let seed_arg =
    Arg.(
      value & opt int 0
      & info [ "seed" ] ~docv:"N"
          ~doc:"Random seed for the generated inputs.")
  in
  Cmd.v
    (Cmd.info "run"
       ~doc:
         "Execute one tensor program on random seeded inputs through the \
          selected engine and print the result.  With $(b,--verbose) the \
          compiled engine also reports its plan: steps, fused \
          operations, folded constants, and arena reuse.")
    Term.(
      const run_run $ prog_pos_arg $ engine_arg $ exec_options_term
      $ seed_arg $ trace_arg $ verbose_arg)

let lift_cmd =
  let file_arg =
    Arg.(
      value
      & pos 0 (some file) None
      & info [] ~docv:"FILE"
          ~doc:"Scalar loop-nest kernel to lift (the loop language).")
  in
  let bench_arg =
    Arg.(
      value & opt_all string []
      & info [ "bench" ] ~docv:"NAME"
          ~doc:
            "Lift a bundled kernel from the lifted benchmark tier \
             (repeatable; $(b,all) expands to every bundled kernel).")
  in
  let samples_arg =
    Arg.(
      value & opt int 3
      & info [ "samples" ] ~docv:"N"
          ~doc:
            "Input draws forming the value signature candidates are \
             pruned against before symbolic verification.")
  in
  let seed_arg =
    Arg.(
      value & opt int 0x11f7
      & info [ "seed" ] ~docv:"N" ~doc:"Random seed for the input draws.")
  in
  let synth_out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "synth-out" ] ~docv:"FILE"
          ~doc:
            "Write the lifted-and-optimized DSL program (inputs + \
             expression, re-parseable) to FILE instead of stdout.")
  in
  let report_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "report" ] ~docv:"FILE"
          ~doc:
            "Write a $(b,stenso.lift/1) JSON report: per-kernel sketch, \
             value-pruning and certification counters, lift/verify \
             times, success rate.  Validate with $(b,stenso report \
             --min-success).")
  in
  let quiet_arg =
    Arg.(
      value & flag
      & info [ "quiet" ] ~doc:"Print only the emitted DSL programs.")
  in
  Cmd.v
    (Cmd.info "lift"
       ~doc:
         "Lift a scalar loop-nest kernel into the tensor DSL by \
          sketch-guided synthesis with value-based pruning, certify the \
          result symbolically and differentially against the loop \
          interpreter, then superoptimize it.  Exit status: 0 when every \
          kernel lifts, 1 on a failed lift, 65 ($(b,EX_DATAERR)) on a \
          malformed kernel file.")
    Term.(
      const lift_run $ file_arg $ bench_arg $ estimator_arg $ engine_arg
      $ exec_options_term $ timeout_arg $ jobs_arg $ cost_cache_arg
      $ no_store_arg $ store_dir_arg $ samples_arg $ seed_arg
      $ synth_out_arg $ report_arg $ trace_arg $ quiet_arg)

let profile_cmd =
  let cache_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "cost-cache" ] ~docv:"FILE"
          ~doc:"Profiling table to create or extend.")
  in
  let benchmarks_arg =
    Arg.(
      value
      & opt (list string) []
      & info [ "benchmarks" ] ~docv:"NAMES"
          ~doc:
            "Comma-separated benchmark names or group tokens (github, \
             synthetic, masking, ml, lifted); default: the paper's 33.")
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:
         "Run the measured cost model's offline profiling phase and \
          persist it to $(b,--cost-cache) for later runs.")
    Term.(const profile_run $ benchmarks_arg $ cache_arg $ extended_ops_arg)

let report_cmd =
  let file_arg =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"FILE" ~doc:"Report to validate.")
  in
  let min_speedup_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "min-speedup" ] ~docv:"X"
          ~doc:
            "For $(b,stenso.exec-bench/1) reports: fail unless every \
             benchmark's VM speedup is at least $(docv) and every \
             reduction-rooted benchmark fused at least one op.")
  in
  let min_success_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "min-success" ] ~docv:"RATE"
          ~doc:
            "For $(b,stenso.lift/1) reports: fail unless the lift \
             success rate is at least $(docv) (a fraction, e.g. 1.0).")
  in
  Cmd.v
    (Cmd.info "report"
       ~doc:
         "Validate a JSON report — $(b,stenso.suite-report/1), \
          $(b,stenso.exec-bench/1), $(b,stenso.lift/1) and friends, \
          dispatched on its schema field — and print its summary.")
    Term.(const report_run $ file_arg $ min_speedup_arg $ min_success_arg)

let serve_cmd =
  let workers_arg =
    Arg.(
      value & opt int 2
      & info [ "workers" ] ~docv:"N"
          ~doc:"Worker domains serving requests concurrently.")
  in
  let queue_arg =
    Arg.(
      value & opt int 64
      & info [ "queue-capacity" ] ~docv:"N"
          ~doc:
            "Pending-request bound; beyond it requests are shed \
             immediately with a $(b,busy) response.")
  in
  let tcp_arg =
    Arg.(
      value & opt_all string []
      & info [ "tcp" ] ~docv:"HOST:PORT"
          ~doc:
            "Also listen on a TCP endpoint (repeatable).  Port 0 binds \
             an ephemeral port; the daemon prints one $(b,listening on) \
             line per listener with the bound address.")
  in
  let max_conns_arg =
    Arg.(
      value & opt int 1024
      & info [ "max-conns" ] ~docv:"N"
          ~doc:
            "Open-connection bound; beyond it new connections receive \
             the $(b,busy) response and are closed at accept.")
  in
  let read_deadline_arg =
    Arg.(
      value & opt float 30.
      & info [ "read-deadline" ] ~docv:"SECONDS"
          ~doc:
            "Seconds a partial request line may sit without progress \
             before its connection is closed (slow-loris guard); idle \
             connections with no partial line are unaffected.")
  in
  let write_deadline_arg =
    Arg.(
      value & opt float 30.
      & info [ "write-deadline" ] ~docv:"SECONDS"
          ~doc:"Seconds a response write may take before the connection \
                is dropped.")
  in
  let no_refine_arg =
    Arg.(
      value & flag
      & info [ "no-refine" ]
          ~doc:
            "Disable background refinement: tier-1/2 answers are served \
             as-is and never upgraded to the full-search optimum on \
             spare worker capacity.")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the long-lived synthesis daemon: NDJSON requests over a \
          Unix-domain socket and/or TCP ($(b,--tcp)), answered \
          cache-first from the persistent store by a bounded worker \
          pool.  Identical in-flight requests coalesce onto one \
          synthesis, and answers served without a full search are \
          refined to the search optimum in the background.  \
          SIGINT/SIGTERM shut it down gracefully.  $(b,--socket \"\") \
          disables the Unix listener.")
    Term.(
      const serve_run $ socket_arg $ tcp_arg $ workers_arg $ queue_arg
      $ max_conns_arg $ read_deadline_arg $ write_deadline_arg
      $ no_refine_arg $ estimator_arg $ exec_options_term $ timeout_arg
      $ no_bnb_arg $ no_simp_arg $ extended_ops_arg $ cost_cache_arg
      $ rules_depth_arg $ no_store_arg $ store_dir_arg $ trace_arg)

let request_cmd =
  let id_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "id" ] ~docv:"ID"
          ~doc:"Request id echoed back in the response.")
  in
  let req_estimator_arg =
    Arg.(
      value
      & opt (some string) None
      & info
          [ "cost_estimator"; "cost-estimator" ]
          ~docv:"NAME" ~doc:"Per-request cost estimator override.")
  in
  let req_timeout_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "timeout" ] ~docv:"SECONDS"
          ~doc:"Per-request synthesis budget override.")
  in
  let io_timeout_arg =
    Arg.(
      value & opt float 30.
      & info [ "io-timeout" ] ~docv:"SECONDS"
          ~doc:
            "Transport deadline for the whole exchange: connecting to \
             the daemon is retried with backoff until it, and the \
             socket reads/writes are bounded by the remaining budget.")
  in
  let endpoints_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "endpoints" ] ~docv:"EP,EP,..."
          ~doc:
            "Comma-separated replica endpoints ($(b,HOST:PORT), \
             $(b,tcp://HOST:PORT) or $(b,unix://PATH)), tried \
             round-robin with failover.  Default: the $(b,--socket) \
             Unix path.")
  in
  let busy_retries_arg =
    Arg.(
      value & opt int 3
      & info [ "busy-retries" ] ~docv:"N"
          ~doc:
            "Extra attempts (with full-jitter exponential backoff) when \
             every replica sheds the request as $(b,busy).")
  in
  Cmd.v
    (Cmd.info "request"
       ~doc:
         "Send one program to running $(b,stenso serve) daemon(s) and \
          print the response line.  Exit status: 0 on $(b,ok:true), 1 on \
          $(b,ok:false) or transport failure, 75 ($(b,EX_TEMPFAIL)) when \
          every replica stayed busy through the jittered retries.")
    Term.(
      const request_run $ endpoints_arg $ socket_arg $ program_arg $ id_arg
      $ req_estimator_arg $ req_timeout_arg $ io_timeout_arg
      $ busy_retries_arg)

let loadgen_cmd =
  let endpoints_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "endpoints" ] ~docv:"EP,EP,..."
          ~doc:
            "Comma-separated replica endpoints to spread the load over \
             (default: the default Unix socket).")
  in
  let benchmarks_arg =
    Arg.(
      value
      & opt (list string) []
      & info [ "benchmarks" ] ~docv:"NAMES"
          ~doc:
            "Comma-separated benchmark names to replay (default: all \
             33).")
  in
  let concurrency_arg =
    Arg.(
      value & opt int 32
      & info [ "c"; "concurrency" ] ~docv:"N"
          ~doc:"Concurrent keep-alive client connections (closed loop).")
  in
  let duration_arg =
    Arg.(
      value & opt float 10.
      & info [ "duration" ] ~docv:"SECONDS"
          ~doc:"Measured-phase length.")
  in
  let timeout_arg =
    Arg.(
      value & opt float 30.
      & info [ "request-timeout" ] ~docv:"SECONDS"
          ~doc:"Per-exchange deadline during the measured phase.")
  in
  let no_warmup_arg =
    Arg.(
      value & flag
      & info [ "no-warmup" ]
          ~doc:
            "Skip the warmup pass (each program once before measuring) \
             — the measured phase then includes cold synthesis times.")
  in
  let warmup_timeout_arg =
    Arg.(
      value & opt float 600.
      & info [ "warmup-timeout" ] ~docv:"SECONDS"
          ~doc:
            "Per-exchange deadline during warmup (cold requests may run \
             a full synthesis).")
  in
  let settle_arg =
    Arg.(
      value & opt float 0.
      & info [ "settle" ] ~docv:"SECONDS"
          ~doc:
            "Pause between warmup and measurement, letting background \
             refinement drain so the measured phase hits a fully warm \
             store.")
  in
  let report_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "report" ] ~docv:"FILE"
          ~doc:
            "Write the $(b,stenso.serve-load/1) JSON report to FILE \
             (default: stdout).  Validate with $(b,stenso report FILE).")
  in
  let quiet_arg =
    Arg.(
      value & flag
      & info [ "quiet" ] ~doc:"Print only the report (no progress lines).")
  in
  Cmd.v
    (Cmd.info "loadgen"
       ~doc:
         "Replay the benchmark suite against running $(b,stenso serve) \
          daemon(s) from a closed-loop pool of keep-alive connections, \
          and report throughput plus p50/p95/p99 latency split by \
          serving tier ($(b,stenso.serve-load/1)).")
    Term.(
      const loadgen_run $ endpoints_arg $ benchmarks_arg $ concurrency_arg
      $ duration_arg $ timeout_arg $ no_warmup_arg $ warmup_timeout_arg
      $ settle_arg $ estimator_arg $ report_arg $ quiet_arg)

let cmd =
  let doc = "STENSO: tensor-program superoptimization by symbolic synthesis" in
  Cmd.group ~default:optimize_term
    (Cmd.info "stenso" ~doc ~version:Stenso.Version.current)
    [
      optimize_cmd;
      suite_cmd;
      mine_cmd;
      run_cmd;
      lift_cmd;
      profile_cmd;
      report_cmd;
      serve_cmd;
      request_cmd;
      loadgen_cmd;
    ]

let () = exit (Cmd.eval cmd)
